package experiments

import (
	"bytes"
	"strings"
	"testing"

	"predrm/internal/trace"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Traces = 3
	cfg.TraceLen = 60
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{Traces: 1},
		{Traces: 1, TraceLen: 1},
		{Traces: 1, TraceLen: 1, Profile: Profile{TaskGen: PaperProfile().TaskGen}},
		func() Config { c := DefaultConfig(); c.Workers = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestProfiles(t *testing.T) {
	p := PaperProfile()
	if p.InterarrivalMean != 1.2 || p.InterarrivalStd != 0.4 {
		t.Fatalf("paper profile = %+v", p)
	}
	c := CalibratedProfile()
	if c.InterarrivalMean <= p.InterarrivalMean {
		t.Fatal("calibrated profile should lower the offered load")
	}
	if p.TaskGen.NumTypes != 100 {
		t.Fatal("paper profile should use 100 task types")
	}
}

func TestMotivational(t *testing.T) {
	r, err := Motivational()
	if err != nil {
		t.Fatal(err)
	}
	if !r.NoPredMapsGPU || !r.NoPredRejectsTau2 || !r.PredMapsCPU1 {
		t.Fatalf("motivational narrative not reproduced: %+v", r)
	}
	if r.PredEnergy != 8.8 {
		t.Fatalf("scenario (b) energy %v, want 8.8", r.PredEnergy)
	}
	var buf bytes.Buffer
	if err := r.Table.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "8.8 J") || strings.Contains(out, "NO") {
		t.Fatalf("table output wrong:\n%s", out)
	}
}

func TestMILPvsHeuristicSmall(t *testing.T) {
	r, err := MILPvsHeuristic(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The exact engine must not reject more than the heuristic on average
	// (its per-decision dominance makes this overwhelmingly likely even on
	// small samples).
	if r.RejExact.Mean > r.RejHeuristic.Mean+2 {
		t.Fatalf("exact rejection %.2f far above heuristic %.2f", r.RejExact.Mean, r.RejHeuristic.Mean)
	}
	if r.ExactWinRate < 0.5 {
		t.Fatalf("exact win rate %.2f suspiciously low", r.ExactWinRate)
	}
	if len(r.Table.Rows) != 2 {
		t.Fatalf("table rows = %d", len(r.Table.Rows))
	}
}

func TestPredictionImpactSmall(t *testing.T) {
	for _, tight := range []trace.Tightness{trace.VeryTight, trace.LessTight} {
		r, err := PredictionImpact(smallConfig(), tight)
		if err != nil {
			t.Fatal(err)
		}
		// Normalized energy: the maximum must be exactly 1.
		max := 0.0
		for _, v := range r.NormalizedEnergy {
			if v > max {
				max = v
			}
		}
		if max != 1 {
			t.Fatalf("%v: normalized energies %v", tight, r.NormalizedEnergy)
		}
		// Prediction with a perfect oracle must not be dramatically worse
		// than off for the same engine.
		if r.Rejection[0].Mean > r.Rejection[1].Mean+5 {
			t.Fatalf("%v: MILP on %.2f much worse than off %.2f", tight, r.Rejection[0].Mean, r.Rejection[1].Mean)
		}
		var buf bytes.Buffer
		if err := r.RejectionTable.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.EnergyTable.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "MILP on") {
			t.Fatal("table missing MILP on row")
		}
	}
}

func TestFig4aSmall(t *testing.T) {
	r, err := Fig4a(smallConfig(), []float64{0.25, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RejExact) != 2 || len(r.RejHeuristic) != 2 {
		t.Fatalf("sweep sizes wrong: %+v", r)
	}
	// Perfect accuracy should not reject more than degraded accuracy by a
	// wide margin (noise allowance on tiny samples).
	if r.RejHeuristic[1].Mean > r.RejHeuristic[0].Mean+5 {
		t.Fatalf("accuracy 1.0 (%.2f) much worse than 0.25 (%.2f)",
			r.RejHeuristic[1].Mean, r.RejHeuristic[0].Mean)
	}
}

func TestFig4bSmall(t *testing.T) {
	r, err := Fig4b(smallConfig(), []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.X) != 2 {
		t.Fatal("sweep axis wrong")
	}
	var buf bytes.Buffer
	if err := r.Table.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "off") {
		t.Fatal("table missing off baseline")
	}
}

func TestFig5Small(t *testing.T) {
	r, err := Fig5(smallConfig(), []float64{0, 0.08})
	if err != nil {
		t.Fatal(err)
	}
	// Large overhead must hurt relative to zero overhead.
	if r.RejHeuristic[1].Mean+1e-9 < r.RejHeuristic[0].Mean {
		t.Fatalf("overhead 8%% (%.2f) did not hurt vs 0%% (%.2f)",
			r.RejHeuristic[1].Mean, r.RejHeuristic[0].Mean)
	}
}

func TestAblationsSmall(t *testing.T) {
	if _, err := AblationRegret(smallConfig()); err != nil {
		t.Fatal(err)
	}
	r, err := AblationMigration(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Labels[0] != "charge-started-only" {
		t.Fatalf("labels = %v", r.Labels)
	}
}

func TestOnlinePredictorsSmall(t *testing.T) {
	r, err := OnlinePredictors(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 4 || len(r.Rej) != 4 {
		t.Fatalf("result shape wrong: %+v", r.Labels)
	}
}

func TestLookaheadSweepSmall(t *testing.T) {
	r, err := LookaheadSweep(smallConfig(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Horizons) != 3 || r.Horizons[0] != 0 || r.Horizons[2] != 2 {
		t.Fatalf("horizons = %v", r.Horizons)
	}
	if len(r.Rej) != 3 || len(r.Delta) != 3 {
		t.Fatalf("result shape wrong")
	}
	var buf bytes.Buffer
	if err := r.Table.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k=2") {
		t.Fatal("table missing k=2 row")
	}
}

func TestRunGridDeterminism(t *testing.T) {
	cfg := smallConfig()
	run := func() []float64 {
		g, err := runGrid(cfg, trace.VeryTight, []variant{
			{name: "heur on", engine: engineHeuristic, predict: accurate()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return g.rejections(0)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grid not deterministic at trace %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"name", "v"},
		Notes:  []string{"n1"},
	}
	tbl.AddRow("a", "1.00")
	tbl.AddRow("bbbb", "22.00")
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n", "name", "bbbb", "22.00", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineStaticSmall(t *testing.T) {
	r, err := BaselineStatic(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 3 || r.Labels[0] != "quasi-static" {
		t.Fatalf("labels = %v", r.Labels)
	}
	// The exact dynamic RM must not reject more than the no-remap baseline
	// (beyond small-sample noise).
	if r.Rej[2].Mean > r.Rej[0].Mean+3 {
		t.Fatalf("MILP %.2f%% rejects more than quasi-static %.2f%%", r.Rej[2].Mean, r.Rej[0].Mean)
	}
}

func TestLoadSurfaceSmall(t *testing.T) {
	cfg := smallConfig()
	r, err := LoadSurface(cfg, []float64{2.0, 8.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RejHeurVT) != 2 {
		t.Fatalf("surface size wrong: %+v", r)
	}
	// Lower load must not reject more (allowing small-sample noise).
	if r.RejHeurVT[1].Mean > r.RejHeurVT[0].Mean+3 {
		t.Fatalf("rejection did not fall with load: %.2f at ia=2 vs %.2f at ia=8",
			r.RejHeurVT[0].Mean, r.RejHeurVT[1].Mean)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "b"}, Notes: []string{"n"}}
	tbl.AddRow("x", "1")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# T", "a,b", "x,1", "# n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}
