package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"predrm/internal/core"
	"predrm/internal/exact"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/trace"
)

// TestWarmStartMatchesCold is the end-to-end decision-neutrality contract:
// warm-start solving is a speed knob, never a behaviour knob. The same
// experiment grid — both engines, prediction on, both tightness groups —
// must produce identical results with warm start on and off: identical
// rejection rates, energies, acceptance counts, and miss counts on every
// (trace, variant) cell.
func TestWarmStartMatchesCold(t *testing.T) {
	variants := []variant{
		{name: "MILP", engine: engineExact, predict: accurate()},
		{name: "heuristic", engine: engineHeuristic, predict: accurate()},
		{name: "greedy", engine: engineGreedy, predict: accurate()},
	}
	run := func(tight trace.Tightness, warm bool) *grid {
		cfg := smallConfig()
		cfg.Traces = 2
		cfg.TraceLen = 45
		cfg.WarmStart = warm
		// The identity claim covers completed solves (DESIGN.md §10): a
		// binding node budget truncates warm and cold searches at different
		// points by design, so give the exact engine room to finish.
		cfg.ExactNodeLimit = 50_000_000
		g, err := runGrid(cfg, tight, variants)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	for _, tight := range []trace.Tightness{trace.VeryTight, trace.LessTight} {
		warm, cold := run(tight, true), run(tight, false)
		if !reflect.DeepEqual(warm.results, cold.results) {
			for v := range warm.results {
				for ti := range warm.results[v] {
					if !reflect.DeepEqual(warm.results[v][ti], cold.results[v][ti]) {
						t.Fatalf("%v variant %q trace %d: warm %+v != cold %+v",
							tight, variants[v].name, ti, warm.results[v][ti], cold.results[v][ti])
					}
				}
			}
			t.Fatalf("%v: grids differ", tight)
		}
	}
}

// TestWarmStartMatchesColdSimTrace pins the claim all the way down to the
// per-job record stream: a single simulation run with a warm-started
// solver must marshal byte-identically to the cold run — every admission,
// mapping, migration, and completion the same, for both engines.
// (Telemetry is excluded: warm counters and wall-clock histograms differ
// by design; decisions must not.)
func TestWarmStartMatchesColdSimTrace(t *testing.T) {
	plat := platform.Default()
	root := rng.New(77)
	set, err := task.Generate(plat, task.DefaultGenConfig(), root.Split())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(set, trace.GenConfig{
		Length:           80,
		InterarrivalMean: 1.2,
		InterarrivalStd:  0.4,
		Tightness:        trace.VeryTight,
	}, root.Split())
	if err != nil {
		t.Fatal(err)
	}
	run := func(solver core.Solver) []byte {
		res, err := sim.Run(sim.Config{Platform: plat, TaskSet: set, Solver: solver}, tr)
		if err != nil {
			t.Fatal(err)
		}
		res.Telemetry = nil
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	engines := []struct {
		name       string
		warm, cold core.Solver
	}{
		{"heuristic", &core.Heuristic{Cache: sched.NewFeasCache(0)}, &core.Heuristic{}},
		{"exact", &exact.Optimal{WarmStart: true}, &exact.Optimal{}},
	}
	for _, e := range engines {
		w, c := run(e.warm), run(e.cold)
		if !bytes.Equal(w, c) {
			t.Fatalf("%s: warm and cold runs diverged:\nwarm: %s\ncold: %s", e.name, w, c)
		}
	}
}
