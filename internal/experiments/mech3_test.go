package experiments

import (
	"testing"

	"predrm/internal/trace"
)

// TestMechanismEngines (dev aid): prediction benefit per engine at the
// calibrated load.
func TestMechanismEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("dev aid")
	}
	cfg := DefaultConfig()
	cfg.Traces = 4
	cfg.TraceLen = 120
	g, err := runGrid(cfg, trace.VeryTight, []variant{
		{name: "MILP off", engine: engineExact},
		{name: "MILP on", engine: engineExact, predict: accurate()},
		{name: "heur off", engine: engineHeuristic},
		{name: "heur on", engine: engineHeuristic, predict: accurate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range g.variants {
		var sum float64
		for _, r := range g.results[v] {
			sum += r.RejPct
		}
		t.Logf("%-9s rej %.2f%%", g.variants[v].name, sum/float64(len(g.results[v])))
	}
}
