package experiments

import (
	"fmt"

	"predrm/internal/metrics"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// TelemetryResult is the per-run observability report: for each simulated
// variant, the merged (across traces) metrics snapshot and a printable
// summary of solver latency, admission outcomes, migrations, and
// reservation behaviour.
type TelemetryResult struct {
	// Table summarises the merged snapshots, one row per variant.
	Table *Table
	// PerVariant maps a variant name to its merged snapshot.
	PerVariant map[string]*telemetry.Snapshot
	// Merged combines all variants' snapshots (the run total), e.g. for
	// cmd/experiments -metrics-out.
	Merged *telemetry.Snapshot
}

// TelemetryProbe runs the core engine matrix (heuristic and exact, with
// and without perfect prediction) over the VT group with full metrics
// collection and aggregates the per-trace snapshots into a per-run
// telemetry report. This is the measured baseline future performance work
// is judged against: it exposes where activation time actually goes
// (solver vs schedulability vs trace advancement) and how often
// reservations pay off.
func TelemetryProbe(cfg Config) (*TelemetryResult, error) {
	variants := []variant{
		{name: "heuristic", engine: engineHeuristic, telemetry: true},
		{name: "heuristic+pred", engine: engineHeuristic, predict: accurate(), telemetry: true},
		{name: "MILP", engine: engineExact, telemetry: true},
		{name: "MILP+pred", engine: engineExact, predict: accurate(), telemetry: true},
	}
	g, err := runGrid(cfg, trace.VeryTight, variants)
	if err != nil {
		return nil, err
	}

	res := &TelemetryResult{PerVariant: make(map[string]*telemetry.Snapshot, len(variants))}
	table := &Table{
		Title: fmt.Sprintf("Telemetry report: per-activation solver latency and RM decision metrics (VT, %s profile)", cfg.Profile.Name),
		Header: []string{"variant", "solves", "lat p50 µs", "lat p95 µs", "lat max µs",
			"rejected", "migrations", "resv planned", "resv honoured"},
		Notes: []string{
			"latency percentiles are bucket-interpolated from sim.solver_seconds",
			"resv honoured counts reservations held idle until the next activation (plan mode)",
		},
	}
	var all []*telemetry.Snapshot
	for vi, v := range variants {
		snaps := make([]*telemetry.Snapshot, 0, len(g.results[vi]))
		for _, tr := range g.results[vi] {
			snaps = append(snaps, tr.Telemetry)
		}
		merged := telemetry.Merge(snaps...)
		res.PerVariant[v.name] = merged
		all = append(all, merged)

		lat := merged.Histograms["sim.solver_seconds"]
		latSample := metrics.FromHistogram(lat)
		us := func(sec float64) string { return f1(sec * 1e6) }
		table.AddRow(v.name,
			fmt.Sprintf("%d", latSample.N),
			us(lat.Quantile(0.50)),
			us(lat.Quantile(0.95)),
			us(latSample.Max),
			fmt.Sprintf("%d", merged.Counters["sim.rejected"]),
			fmt.Sprintf("%d", merged.Counters["sim.migrations"]),
			fmt.Sprintf("%d", merged.Counters["sim.reservations_planned"]),
			fmt.Sprintf("%d", merged.Counters["sim.reservations_honoured"]),
		)
	}
	res.Merged = telemetry.Merge(all...)
	res.Table = table
	return res, nil
}
