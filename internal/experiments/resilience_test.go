package experiments

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"predrm/internal/core"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// alwaysFailing is a FallibleSolver whose every activation errors.
type alwaysFailing struct{}

func (alwaysFailing) Solve(p *sched.Problem) core.Decision {
	mapping := make([]int, len(p.Jobs))
	for i := range mapping {
		mapping[i] = sched.Unmapped
	}
	return core.Decision{Mapping: mapping}
}

func (alwaysFailing) SolveChecked(p *sched.Problem) (core.Decision, error) {
	return core.Decision{}, errors.New("backend down")
}

// TestRunGridPromptErrorPropagation proves runGrid cancels outstanding work
// as soon as one cell fails and reports the failure with its (trace,
// variant) coordinates.
func TestRunGridPromptErrorPropagation(t *testing.T) {
	cfg := smallConfig()
	cfg.Traces = 6
	cfg.Workers = 2
	var started atomic.Int64
	variants := []variant{
		{name: "doomed", solver: func(*task.Set) core.Solver {
			started.Add(1)
			return alwaysFailing{}
		}},
		{name: "fine-1", engine: engineHeuristic},
		{name: "fine-2", engine: engineHeuristic},
		{name: "fine-3", engine: engineHeuristic},
	}
	_, err := runGrid(cfg, trace.VeryTight, variants)
	if err == nil {
		t.Fatal("failing variant did not surface an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `variant "doomed"`) || !strings.Contains(msg, "trace ") {
		t.Fatalf("error lacks grid coordinates: %v", err)
	}
	if !strings.Contains(msg, "backend down") {
		t.Fatalf("error lost the cause: %v", err)
	}
	// The doomed variant fails on its very first cell; cancellation must
	// stop the grid long before all of its cells are attempted.
	if n := started.Load(); n >= int64(cfg.Traces) {
		t.Fatalf("doomed variant started %d cells, cancellation not prompt", n)
	}
}

// TestRunGridTracerKeepsOthersParallel checks the tracer only serialises
// the telemetry-attached cells: a grid mixing traced and untraced variants
// completes with multiple workers and a coherent event stream.
func TestRunGridTracerKeepsOthersParallel(t *testing.T) {
	var sink bytes.Buffer
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &sink})
	variants := []variant{
		{name: "traced", engine: engineHeuristic, telemetry: true},
		{name: "plain-1", engine: engineHeuristic},
		{name: "plain-2", engine: engineGreedy},
	}
	g, err := runGrid(cfg, trace.VeryTight, variants)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Fatal("traced variant emitted no events")
	}
	for vi := range variants {
		for ti, r := range g.results[vi] {
			if r.Accepted == 0 && r.RejPct == 0 {
				t.Fatalf("cell (%d,%d) never ran", ti, vi)
			}
		}
	}
	// Only the traced variant carries snapshots.
	if g.results[0][0].Telemetry == nil {
		t.Fatal("traced variant lost its snapshot")
	}
	if g.results[1][0].Telemetry != nil {
		t.Fatal("untraced variant grew a snapshot")
	}
	// Seq must be strictly increasing: a coherent single stream, not an
	// interleaving that lost events.
	events := cfg.Tracer.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event stream out of order at %d", i)
		}
	}
}

func TestValidateRejectsNegativeInterarrivalStd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile.InterarrivalStd = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative interarrival std accepted")
	}
}

// TestFaultSweepSmoke runs the graceful-degradation ablation at a small
// scale: no deadline misses, monotone accounting, populated table.
func TestFaultSweepSmoke(t *testing.T) {
	cfg := smallConfig()
	res, err := FaultSweep(cfg, []float64{0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rej) != 2 || len(res.Table.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d/%d", len(res.Rej), len(res.Table.Rows))
	}
	clean := res.PerRate["faults=0%"]
	faulted := res.PerRate["faults=25%"]
	if clean == nil || faulted == nil {
		t.Fatalf("per-rate snapshots missing: %v", res.PerRate)
	}
	if n := clean.Counters["faultinject.solver_errors"]; n != 0 {
		t.Fatalf("zero-rate plan injected %d solver faults", n)
	}
	if n := faulted.Counters["faultinject.solver_errors"]; n == 0 {
		t.Fatal("25% plan injected no solver faults")
	}
	if n := faulted.Counters["resilience.fallbacks"]; n == 0 {
		t.Fatal("no fallbacks under a 30-activation fault plan")
	}
	if _, ok := faulted.Histograms["resilience.fallback_depth"]; !ok {
		t.Fatal("fallback depth histogram missing from the snapshot")
	}
	var buf bytes.Buffer
	if err := res.Table.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "faults=25%") {
		t.Fatalf("table lacks the faulted row:\n%s", buf.String())
	}
}
