// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 5): the MILP-vs-heuristic comparison (Sec 5.2), the
// prediction impact bars (Fig 2, Fig 3), the accuracy sweeps (Fig 4), the
// overhead sweep (Fig 5), and this repository's own ablations. Each
// experiment returns machine-readable series plus a printable Table whose
// rows mirror what the paper reports.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"predrm/internal/core"
	"predrm/internal/exact"
	"predrm/internal/faultinject"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// Profile selects workload-generation parameters.
type Profile struct {
	// Name labels output ("paper" or "calibrated").
	Name string
	// TaskGen parameterises the task-set generator.
	TaskGen task.GenConfig
	// InterarrivalMean/Std parameterise the arrival process.
	InterarrivalMean, InterarrivalStd float64
}

// PaperProfile returns the literal Sec 5.1 parameters. Note (DESIGN.md):
// with these values the offered load exceeds the 5-CPU+1-GPU platform's
// capacity roughly threefold, so absolute rejection levels sit far above
// the paper's reported band; relative effects still reproduce.
func PaperProfile() Profile {
	return Profile{
		Name:             "paper",
		TaskGen:          task.DefaultGenConfig(),
		InterarrivalMean: 1.2,
		InterarrivalStd:  0.4,
	}
}

// CalibratedProfile keeps the paper's task parameters but scales the mean
// interarrival so the no-prediction baseline lands in the paper's 24-31%
// rejection band (see EXPERIMENTS.md for the calibration run).
func CalibratedProfile() Profile {
	return Profile{
		Name:             "calibrated",
		TaskGen:          task.DefaultGenConfig(),
		InterarrivalMean: 2.2,
		InterarrivalStd:  0.7,
	}
}

// Config drives one experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Traces per tightness group (paper: 500).
	Traces int
	// TraceLen requests per trace (paper: 500).
	TraceLen int
	// Profile selects workload parameters.
	Profile Profile
	// ExactNodeLimit caps the reference solver's search per activation
	// (0 = exact.DefaultNodeLimit). The solver stays anytime-optimal and
	// never returns worse than the heuristic when truncated.
	ExactNodeLimit int
	// WarmStart lets solvers reuse the previous activation's work: the
	// exact solver repairs its last mapping into a warm pruning bound
	// (exact.Optimal.WarmStart) and the heuristic routes its EDF probes
	// through a cross-activation feasibility cache (core.Heuristic.Cache).
	// Both are decision-neutral — results are bit-identical either way
	// (TestWarmStartMatchesCold) — so this is purely a speed knob, on by
	// default via DefaultConfig and the cmd flags.
	WarmStart bool
	// Workers bounds concurrent trace simulations (0 = GOMAXPROCS).
	Workers int
	// Tracer, when non-nil, streams structured events from every
	// telemetry-collecting simulation. Tracer-attached cells run on a
	// dedicated serial lane so the JSONL stream stays a coherent sequence
	// of whole runs instead of an interleaving of concurrent traces; all
	// other cells keep running in parallel.
	Tracer *telemetry.Tracer
	// StateProbe, when non-nil, receives sim.StateSample probes from the
	// same telemetry-collecting cells that attach Tracer, for mounting a
	// live introspection plane (internal/obs) over a sweep. Probe-attached
	// cells ride the tracer's serial lane so the plane observes a coherent
	// sequence of whole runs.
	StateProbe func(sim.StateSample)
}

// DefaultConfig returns a laptop-scale configuration: large enough for the
// paper's qualitative shapes, small enough to run all experiments in
// minutes. Scale Traces/TraceLen up to the paper's 500x500 via cmd flags.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		Traces:    30,
		TraceLen:  200,
		Profile:   CalibratedProfile(),
		WarmStart: true,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Traces <= 0:
		return errors.New("experiments: Traces must be positive")
	case c.TraceLen <= 0:
		return errors.New("experiments: TraceLen must be positive")
	case c.Profile.TaskGen.NumTypes <= 0:
		return errors.New("experiments: profile has no task generator")
	case c.Profile.InterarrivalMean <= 0:
		return errors.New("experiments: profile interarrival must be positive")
	case c.Profile.InterarrivalStd < 0:
		return errors.New("experiments: profile interarrival std must be non-negative")
	case c.ExactNodeLimit < 0 || c.Workers < 0:
		return errors.New("experiments: negative limit")
	}
	return nil
}

// engine names a mapping solver.
type engine int

const (
	engineExact engine = iota // the paper's "MILP" reference
	engineHeuristic
	engineGreedy // ablation A1
)

func (e engine) String() string {
	switch e {
	case engineExact:
		return "MILP"
	case engineHeuristic:
		return "heuristic"
	case engineGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// variant is one simulated configuration of a trace.
type variant struct {
	// name labels columns.
	name string
	// engine selects the solver.
	engine engine
	// predict enables the oracle with the given degradation; nil = off.
	predict *predict.OracleConfig
	// overheadCoeff, when non-zero, sets the oracle overhead to
	// coeff x the trace's mean interarrival (Fig 5).
	overheadCoeff float64
	// policy selects migration charging.
	policy sched.MigrationPolicy
	// online, when non-nil, builds an online predictor instead of the
	// oracle (ablation A3).
	online func(numTypes int) predict.Predictor
	// lookahead sets the forecast horizon (extension X1); 0 = paper's
	// single-step behaviour.
	lookahead int
	// solver, when non-nil, overrides engine with a custom solver built
	// from the task set (the quasi-static baseline needs its design-time
	// table).
	solver func(set *task.Set) core.Solver
	// telemetry attaches a fresh metrics registry to every simulation and
	// carries its snapshot into the trace result (the telemetry report).
	telemetry bool
	// resilience, when non-nil, wraps the variant's solver in a budgeted
	// fallback chain and optionally injects faults (the fault-sweep
	// ablation).
	resilience *resilienceSpec
}

// resilienceSpec hardens one variant: the engine becomes the primary stage
// of a core.BudgetedSolver falling back to the plain heuristic and then
// reject-only, and a non-zero fault plan wraps the primary with injected
// solver errors plus predictor and latency faults.
type resilienceSpec struct {
	// budget bounds every budget-aware chain stage per activation.
	budget core.Budget
	// plan injects deterministic faults; nil or zero injects none. Each
	// trace derives its own plan seed so faults differ across traces while
	// the whole grid stays reproducible from Config.Seed.
	plan *faultinject.Plan
}

// traceResult is one (trace, variant) outcome.
type traceResult struct {
	RejPct    float64
	Energy    float64
	Accepted  int
	Misses    int
	Truncated bool
	// Telemetry is the per-trace metrics snapshot (variant.telemetry).
	Telemetry *telemetry.Snapshot
}

// grid holds results indexed [variant][trace].
type grid struct {
	variants []variant
	results  [][]traceResult
}

func (g *grid) column(v int, f func(traceResult) float64) []float64 {
	out := make([]float64, len(g.results[v]))
	for i, r := range g.results[v] {
		out[i] = f(r)
	}
	return out
}

func (g *grid) rejections(v int) []float64 {
	return g.column(v, func(r traceResult) float64 { return r.RejPct })
}

func (g *grid) energies(v int) []float64 {
	return g.column(v, func(r traceResult) float64 { return r.Energy })
}

func (g *grid) misses() int {
	n := 0
	for _, col := range g.results {
		for _, r := range col {
			n += r.Misses
		}
	}
	return n
}

// newSolver builds a fresh solver per simulation (solvers keep scratch
// state and are not safe for concurrent sharing).
func (c *Config) newSolver(e engine) core.Solver {
	switch e {
	case engineExact:
		return &exact.Optimal{NodeLimit: c.ExactNodeLimit, WarmStart: c.WarmStart}
	case engineGreedy:
		h := &core.Heuristic{Greedy: true}
		if c.WarmStart {
			h.Cache = sched.NewFeasCache(0)
		}
		return h
	default:
		h := &core.Heuristic{}
		if c.WarmStart {
			h.Cache = sched.NewFeasCache(0)
		}
		return h
	}
}

// runGrid simulates every variant over the same Traces traces of the given
// tightness group. Trace workloads and oracle corruption are deterministic
// in cfg.Seed; variants see identical traces (paired comparisons).
func runGrid(cfg Config, tight trace.Tightness, variants []variant) (*grid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plat := platform.Default()
	root := rng.New(cfg.Seed ^ uint64(0x9e37+tight))
	set, err := task.Generate(plat, cfg.Profile.TaskGen, root.Split())
	if err != nil {
		return nil, err
	}
	gcfg := trace.GenConfig{
		Length:           cfg.TraceLen,
		InterarrivalMean: cfg.Profile.InterarrivalMean,
		InterarrivalStd:  cfg.Profile.InterarrivalStd,
		Tightness:        tight,
	}
	traces, err := trace.GenerateGroup(set, gcfg, cfg.Traces, root.Split())
	if err != nil {
		return nil, err
	}

	g := &grid{variants: variants, results: make([][]traceResult, len(variants))}
	for v := range variants {
		g.results[v] = make([]traceResult, len(traces))
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// A shared tracer cannot absorb interleaved runs, so the cells of
	// tracer-attached variants (variant.telemetry) go through a dedicated
	// serial lane; every other cell stays parallel.
	serialLane := false
	if cfg.Tracer != nil || cfg.StateProbe != nil {
		for _, v := range variants {
			if v.telemetry {
				serialLane = true
				break
			}
		}
	}

	type job struct{ t, v int }
	jobs := make(chan job)
	serial := make(chan job)
	// done closes at the first failure: workers then drain their lane
	// without simulating and the producer stops feeding, so runGrid
	// returns within one in-flight cell of the error.
	done := make(chan struct{})
	var failOnce sync.Once
	var firstErr error
	fail := func(jb job, err error) {
		failOnce.Do(func() {
			firstErr = fmt.Errorf("experiments: trace %d variant %q: %w", jb.t, variants[jb.v].name, err)
			close(done)
		})
	}
	var wg sync.WaitGroup
	work := func(lane <-chan job) {
		defer wg.Done()
		for jb := range lane {
			select {
			case <-done:
				continue // cancelled: drain without simulating
			default:
			}
			res, err := runOne(cfg, plat, set, traces[jb.t], uint64(jb.t), variants[jb.v])
			if err != nil {
				fail(jb, err)
				continue
			}
			g.results[jb.v][jb.t] = res
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go work(jobs)
	}
	if serialLane {
		wg.Add(1)
		go work(serial)
	}
feed:
	for ti := range traces {
		for vi := range variants {
			lane := jobs
			if serialLane && variants[vi].telemetry {
				lane = serial
			}
			select {
			case lane <- job{ti, vi}:
			case <-done:
				break feed
			}
		}
	}
	close(jobs)
	close(serial)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

// runOne simulates a single (trace, variant) cell.
func runOne(cfg Config, plat *platform.Platform, set *task.Set, tr *trace.Trace, traceSeed uint64, v variant) (traceResult, error) {
	scfg := sim.Config{
		Platform:  plat,
		TaskSet:   set,
		Solver:    cfg.newSolver(v.engine),
		Policy:    v.policy,
		Lookahead: v.lookahead,
	}
	if v.solver != nil {
		scfg.Solver = v.solver(set)
	}
	if v.telemetry {
		scfg.Metrics = telemetry.NewRegistry()
		scfg.Tracer = cfg.Tracer
		scfg.StateProbe = cfg.StateProbe
	}
	switch {
	case v.online != nil:
		scfg.Predictor = v.online(set.Len())
	case v.predict != nil:
		ocfg := *v.predict
		ocfg.NumTypes = set.Len()
		ocfg.Seed = cfg.Seed*1_000_003 + traceSeed
		if v.overheadCoeff > 0 {
			ocfg.Overhead = v.overheadCoeff * tr.MeanInterarrival()
		}
		o, err := predict.NewOracle(tr, ocfg)
		if err != nil {
			return traceResult{}, err
		}
		scfg.Predictor = o
	}
	if v.resilience != nil {
		wireResilience(&scfg, v, traceSeed)
	}
	res, err := sim.Run(scfg, tr)
	if err != nil {
		return traceResult{}, err
	}
	return traceResult{
		RejPct:    res.RejectionPct(),
		Energy:    res.TotalEnergy,
		Accepted:  res.Accepted,
		Misses:    res.DeadlineMisses,
		Telemetry: res.Telemetry,
	}, nil
}

// accurate returns the perfect-prediction oracle configuration.
func accurate() *predict.OracleConfig {
	return &predict.OracleConfig{TypeAccuracy: 1, TimeError: 0}
}
