package experiments

import (
	"testing"
	"time"

	"predrm/internal/trace"
)

// TestCalibrationSmoke is a development aid: it reports baseline rejection
// levels and wall time for the calibrated profile so the interarrival
// scaling in CalibratedProfile can be justified (see EXPERIMENTS.md).
func TestCalibrationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	cfg := DefaultConfig()
	cfg.Traces = 3
	cfg.TraceLen = 100
	start := time.Now()
	for _, tight := range []trace.Tightness{trace.VeryTight, trace.LessTight} {
		g, err := runGrid(cfg, tight, []variant{
			{name: "MILP off", engine: engineExact},
			{name: "heur off", engine: engineHeuristic},
			{name: "heur on", engine: engineHeuristic, predict: accurate()},
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range g.variants {
			var sum float64
			for _, r := range g.results[v] {
				sum += r.RejPct
			}
			t.Logf("%s %-9s rej %.2f%%", tight, g.variants[v].name, sum/float64(len(g.results[v])))
		}
	}
	t.Logf("wall time: %v", time.Since(start))
}
