package experiments

import (
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/trace"
)

// TestMechanismSweep (dev aid): where does the prediction benefit emerge
// as a function of load?
func TestMechanismSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("dev aid")
	}
	plat := platform.Default()
	root := rng.New(42)
	set, err := task.Generate(plat, task.DefaultGenConfig(), root.Split())
	if err != nil {
		t.Fatal(err)
	}
	for _, ia := range []float64{1.2, 2.0, 3.0, 4.5, 6.0} {
		gcfg := trace.GenConfig{Length: 100, InterarrivalMean: ia, InterarrivalStd: ia / 3, Tightness: trace.VeryTight}
		var offSum, onSum float64
		const n = 4
		for i := 0; i < n; i++ {
			tr, err := trace.Generate(set, gcfg, root.Split())
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.Config{Platform: plat, TaskSet: set, Solver: &core.Heuristic{}}
			off, err := sim.Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: uint64(i)})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Predictor = o
			on, err := sim.Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			offSum += off.RejectionPct()
			onSum += on.RejectionPct()
		}
		t.Logf("ia=%.1f  off %.2f%%  on %.2f%%  benefit %.2fpp", ia, offSum/n, onSum/n, (offSum-onSum)/n)
	}
}
