package experiments

import (
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/trace"
)

type countingSolver struct {
	inner          core.Solver
	withPred       int
	withPredOK     int
	withoutPred    int
	withoutPredOK  int
	predOnGPU      int
	newTaskShifted int
}

func (c *countingSolver) Solve(p *sched.Problem) core.Decision {
	d := c.inner.Solve(p)
	pi := p.PredIndex()
	if pi >= 0 {
		c.withPred++
		if d.Feasible {
			c.withPredOK++
			if d.Mapping[pi] == 5 {
				c.predOnGPU++
			}
			// Compare the newest real task's mapping with the no-pred solve.
			q := p.WithoutPred()
			dq := c.inner.Solve(q)
			if dq.Feasible {
				// The arriving task is the last real job.
				last := len(q.Jobs) - 1
				if dq.Mapping[last] != d.Mapping[pi-1] && pi == len(p.Jobs)-1 {
					c.newTaskShifted++
				}
			}
		}
	} else {
		c.withoutPred++
		if d.Feasible {
			c.withoutPredOK++
		}
	}
	return d
}

func TestMechanismAdmissionPath(t *testing.T) {
	if testing.Short() {
		t.Skip("dev aid")
	}
	plat := platform.Default()
	root := rng.New(42)
	set, err := task.Generate(plat, task.DefaultGenConfig(), root.Split())
	if err != nil {
		t.Fatal(err)
	}
	gcfg := trace.GenConfig{Length: 100, InterarrivalMean: 3, InterarrivalStd: 1, Tightness: trace.VeryTight}
	cs := &countingSolver{inner: &core.Heuristic{}}
	var rej float64
	const n = 4
	for i := 0; i < n; i++ {
		tr, err := trace.Generate(set, gcfg, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Platform: plat, TaskSet: set, Solver: cs, Predictor: o}, tr)
		if err != nil {
			t.Fatal(err)
		}
		rej += res.RejectionPct()
	}
	t.Logf("rej %.2f%%", rej/n)
	t.Logf("with-pred solves: %d (ok %d = %.0f%%), pred->GPU %d, new-task shifted by pred %d",
		cs.withPred, cs.withPredOK, 100*float64(cs.withPredOK)/float64(cs.withPred), cs.predOnGPU, cs.newTaskShifted)
	t.Logf("fallback solves: %d (ok %d)", cs.withoutPred, cs.withoutPredOK)
}
