package experiments

import "testing"

// TestTelemetryProbe checks that the per-run telemetry report aggregates
// real data: every variant solved once per request, the solver-latency
// histogram is populated, and prediction variants planned reservations.
func TestTelemetryProbe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traces = 3
	cfg.TraceLen = 40
	r, err := TelemetryProbe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 4 {
		t.Fatalf("rows: got %d, want 4", len(r.Table.Rows))
	}
	wantRequests := int64(cfg.Traces * cfg.TraceLen)
	for name, snap := range r.PerVariant {
		if got := snap.Counters["sim.requests"]; got != wantRequests {
			t.Errorf("%s: sim.requests = %d, want %d", name, got, wantRequests)
		}
		lat := snap.Histograms["sim.solver_seconds"]
		if lat.Count != wantRequests {
			t.Errorf("%s: solver latency observations = %d, want %d", name, lat.Count, wantRequests)
		}
		if lat.Count > 0 && lat.Sum <= 0 {
			t.Errorf("%s: solver latency sum not positive", name)
		}
		acc := snap.Counters["sim.accepted"]
		rej := snap.Counters["sim.rejected"]
		if acc+rej != wantRequests {
			t.Errorf("%s: accepted %d + rejected %d != %d", name, acc, rej, wantRequests)
		}
	}
	for _, name := range []string{"heuristic+pred", "MILP+pred"} {
		if r.PerVariant[name].Counters["sim.reservations_planned"] == 0 {
			t.Errorf("%s: no reservations planned under perfect prediction", name)
		}
		if r.PerVariant[name].Counters["sim.predictions"] == 0 {
			t.Errorf("%s: no predictions recorded", name)
		}
	}
	// The heuristic solver registered its own instruments through the
	// Instrumentable attachment in sim.Run.
	if r.PerVariant["heuristic"].Counters["core.solves"] == 0 {
		t.Error("core.solves not recorded")
	}
	if r.PerVariant["MILP"].Counters["exact.solves"] == 0 {
		t.Error("exact.solves not recorded")
	}
	// The exact solver's cross-activation pruning cache must be doing real
	// work on a sweep: consecutive activations share most of their admitted
	// state, so feasibility probes repeat and hit.
	if hits := r.PerVariant["MILP"].Counters["exact.cache.hits"]; hits == 0 {
		t.Error("exact.cache.hits is zero: the pruning cache never hit across activations")
	}
	if rate := r.PerVariant["MILP"].Gauges["exact.cache.hit_rate"].Value; rate <= 0 || rate > 1 {
		t.Errorf("exact.cache.hit_rate = %v, want in (0,1]", rate)
	}
	if r.Merged.Counters["sim.requests"] != 4*wantRequests {
		t.Errorf("merged requests: got %d, want %d", r.Merged.Counters["sim.requests"], 4*wantRequests)
	}
}
