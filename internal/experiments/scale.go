// Scale-sweep: the scale-out admission experiment. Not part of the
// paper's evaluation — the paper's platform is 5 CPUs + 1 GPU — this
// sweep measures what the sharded engine and batch epochs (DESIGN.md
// §12) cost and buy as the platform grows toward the ROADMAP's
// serving-at-scale north star.
package experiments

import (
	"fmt"

	"predrm/internal/core"
	"predrm/internal/metrics"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// ScalePoint is one (platform, admission mode) cell of the sweep.
type ScalePoint struct {
	// Spec is the platform spec ("64c8g").
	Spec string
	// Shards used for this platform (1 for the unsharded reference).
	Shards int
	// BatchWindow in time units (0: the paper's one-by-one protocol).
	BatchWindow float64
	// Rejection summarises per-trace rejection percentages.
	Rejection metrics.Sample
	// Energy summarises per-trace total energy.
	Energy metrics.Sample
	// SolverMicros summarises per-trace mean solver latency (µs per
	// activation, wall time on this machine — indicative, not gated).
	SolverMicros metrics.Sample
}

// ScaleSweepResult holds the sweep grid and its printable table.
type ScaleSweepResult struct {
	Points []ScalePoint
	Table  *Table
}

// ScaleSweep grows the platform across specs and, per size, compares
// one-by-one admission on a single engine against sharded batched
// admission. Offered load scales with capacity (the mean interarrival
// shrinks proportionally to resource count, relative to the profile's
// value on the paper's 6-resource platform) and the task-type mix is
// sized to the platform, so every point runs at a comparable utilisation
// and rejection levels stay commensurable across sizes.
//
// Shard count and batch window also scale: one shard per ~9 resources
// (so the paper-sized platform keeps one shard) and a window of four
// mean interarrivals (so an epoch carries a handful of decisions).
func ScaleSweep(cfg Config, specs []string) (*ScaleSweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiments: scale sweep needs platform specs")
	}
	res := &ScaleSweepResult{}
	t := &Table{
		Title:  fmt.Sprintf("Scale sweep: one-by-one vs sharded batched admission (%d traces x %d reqs)", cfg.Traces, cfg.TraceLen),
		Header: []string{"platform", "mode", "rejection %", "energy (J)", "solver µs/act"},
		Notes: []string{
			"load and type mix scale with platform capacity; rejection is comparable across sizes",
			"solver µs is wall time on this machine - indicative only (see BENCH.md)",
			"batched mode shards the platform (1 shard per ~9 resources) and decides epochs jointly",
		},
	}
	baseline := float64(platform.Default().Len())
	for _, spec := range specs {
		plat, err := platform.Parse(spec)
		if err != nil {
			return nil, err
		}
		ia := cfg.Profile.InterarrivalMean * baseline / float64(plat.Len())
		shards := plat.Len() / 9
		if shards < 1 {
			shards = 1
		}
		modes := []struct {
			name   string
			shards int
			window float64
		}{
			{"one-by-one", 1, 0},
			{fmt.Sprintf("batched x%d", shards), shards, 4 * ia},
		}
		for _, mode := range modes {
			point := ScalePoint{Spec: spec, Shards: mode.shards, BatchWindow: mode.window}
			var rej, energy, lat []float64
			for ti := 0; ti < cfg.Traces; ti++ {
				root := rng.New(cfg.Seed + uint64(ti)*1009)
				tcfg := cfg.Profile.TaskGen
				if min := 2 * plat.Len(); tcfg.NumTypes < min {
					tcfg.NumTypes = min
				}
				set, err := task.Generate(plat, tcfg, root.Split())
				if err != nil {
					return nil, err
				}
				tr, err := trace.Generate(set, trace.GenConfig{
					Length:           cfg.TraceLen,
					InterarrivalMean: ia,
					InterarrivalStd:  ia / 3,
					Tightness:        trace.VeryTight,
				}, root.Split())
				if err != nil {
					return nil, err
				}
				reg := telemetry.NewRegistry()
				r, err := sim.RunSharded(sim.Config{
					Platform: plat,
					TaskSet:  set,
					Metrics:  reg,
				}, sim.ShardConfig{
					Shards:      mode.shards,
					BatchWindow: mode.window,
					NewSolver: func() core.Solver {
						s := &core.Heuristic{}
						if cfg.WarmStart {
							s.Cache = sched.NewFeasCache(0)
						}
						return s
					},
				}, tr)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s %s trace %d: %w", spec, mode.name, ti, err)
				}
				if r.DeadlineMisses > 0 {
					return nil, fmt.Errorf("experiments: %s %s trace %d: %d deadline misses (RM unsound)", spec, mode.name, ti, r.DeadlineMisses)
				}
				rej = append(rej, r.RejectionPct())
				energy = append(energy, r.TotalEnergy)
				if h, ok := reg.Snapshot().Histograms["sim.solver_seconds"]; ok && h.Count > 0 {
					lat = append(lat, 1e6*h.Sum/float64(h.Count))
				}
			}
			point.Rejection = metrics.Summarise(rej)
			point.Energy = metrics.Summarise(energy)
			point.SolverMicros = metrics.Summarise(lat)
			res.Points = append(res.Points, point)
			t.AddRow(spec, mode.name, f2(point.Rejection.Mean), f1(point.Energy.Mean), f2(point.SolverMicros.Mean))
		}
	}
	res.Table = t
	return res, nil
}
