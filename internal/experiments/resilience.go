package experiments

// Resilience ablation: how gracefully does the budgeted fallback chain
// (core.BudgetedSolver) degrade as injected fault rates rise? The paper
// assumes a solver that always answers; this table quantifies what the
// admission protocol's always-sound rejection floor buys when it does not:
// rejection drifts up with the fault rate while the deadline invariant
// stays intact (the sweep hard-fails on any miss).

import (
	"fmt"

	"predrm/internal/core"
	"predrm/internal/faultinject"
	"predrm/internal/metrics"
	"predrm/internal/sim"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// wireResilience rewires scfg for a variant carrying a resilienceSpec: the
// configured solver becomes the primary stage of a budgeted chain falling
// back to the plain heuristic (reject-only is the chain's implicit
// terminal), and a non-zero fault plan wraps the primary stage with
// injected solver errors plus the predictor and latency faults. Faults are
// injected *inside* the chain so they degrade admission instead of
// aborting the run; the trace-derived plan seed keeps the whole grid
// deterministic in Config.Seed.
func wireResilience(scfg *sim.Config, v variant, traceSeed uint64) {
	r := v.resilience
	var trc *telemetry.Tracer
	if v.telemetry {
		trc = scfg.Tracer
	}
	primary := scfg.Solver
	if r.plan != nil && !r.plan.IsZero() {
		plan := *r.plan
		plan.Seed ^= traceSeed*0x9e3779b97f4a7c15 + 1
		primary = plan.Solver(primary, trc)
		scfg.OverheadHook = plan.Hook(trc, scfg.Metrics)
		if scfg.Predictor != nil {
			scfg.Predictor = plan.Predictor(scfg.Predictor, trc, scfg.Metrics)
		}
	}
	scfg.Solver = &core.BudgetedSolver{
		Stages: []core.Stage{
			{Name: "primary", Solver: primary},
			{Name: "heuristic", Solver: &core.Heuristic{}},
		},
		Budget: r.budget,
		Tracer: trc,
	}
}

// FaultSweepResult is the graceful-degradation ablation: rejection and
// degraded-mode telemetry versus injected fault rate.
type FaultSweepResult struct {
	// Rates are the swept fault intensities (the solver-error rate; the
	// other fault channels scale with it, see FaultSweep).
	Rates []float64
	// Rej holds the per-rate rejection summaries.
	Rej []metrics.Sample
	// PerRate maps a variant name to its merged telemetry snapshot.
	PerRate map[string]*telemetry.Snapshot
	Table   *Table
}

// faultSweepBudget bounds the exact primary stage per activation in the
// sweep: large enough that the anytime incumbent is always available, small
// enough that the bound is actually exercised on dense problems.
const faultSweepBudget = 20000

// FaultSweep simulates the hardened exact engine (budgeted chain: exact →
// heuristic → reject-only, accurate prediction) on the VT group while an
// injected fault plan sweeps its intensity over rates: at intensity r the
// solver fails r of its activations, the predictor blacks out on r of its
// forecasts and corrupts r/2 of the rest, and r/2 of the decisions take a
// latency spike. Any deadline miss fails the sweep — graceful degradation
// must never trade the invariant for throughput.
func FaultSweep(cfg Config, rates []float64) (*FaultSweepResult, error) {
	var variants []variant
	for _, r := range rates {
		plan := &faultinject.Plan{
			Seed:                 cfg.Seed,
			SolverErrorRate:      r,
			LatencyRate:          r / 2,
			LatencySpike:         0.1 * cfg.Profile.InterarrivalMean,
			PredictorOutageRate:  r,
			PredictorCorruptRate: r / 2,
			CorruptShift:         0.5 * cfg.Profile.InterarrivalMean,
		}
		if err := plan.Validate(); err != nil {
			return nil, err
		}
		variants = append(variants, variant{
			name:      fmt.Sprintf("faults=%g%%", 100*r),
			engine:    engineExact,
			predict:   accurate(),
			telemetry: true,
			resilience: &resilienceSpec{
				budget: core.Budget{Nodes: faultSweepBudget},
				plan:   plan,
			},
		})
	}
	g, err := runGrid(cfg, trace.VeryTight, variants)
	if err != nil {
		return nil, err
	}
	if n := g.misses(); n > 0 {
		return nil, fmt.Errorf("experiments: fault sweep caused %d deadline misses (degradation not graceful)", n)
	}

	res := &FaultSweepResult{
		Rates:   append([]float64(nil), rates...),
		PerRate: make(map[string]*telemetry.Snapshot, len(variants)),
	}
	table := &Table{
		Title: fmt.Sprintf("Resilience: graceful degradation vs injected fault rate (VT, MILP chain, budget %d nodes, %s profile)",
			faultSweepBudget, cfg.Profile.Name),
		Header: []string{"variant", "rejection %", "solver faults", "fallbacks",
			"reject-only", "budget exhausted", "latency spikes", "pred outages"},
		Notes: []string{
			"chain: exact (budgeted) -> heuristic -> reject-only; rejection is the only degradation channel",
			"deadline misses are asserted zero across the whole sweep",
		},
	}
	for vi, v := range variants {
		snaps := make([]*telemetry.Snapshot, 0, len(g.results[vi]))
		for _, tr := range g.results[vi] {
			snaps = append(snaps, tr.Telemetry)
		}
		merged := telemetry.Merge(snaps...)
		res.PerRate[v.name] = merged
		rej := metrics.Summarise(g.rejections(vi))
		res.Rej = append(res.Rej, rej)
		table.AddRow(v.name,
			f2(rej.Mean),
			fmt.Sprintf("%d", merged.Counters["faultinject.solver_errors"]),
			fmt.Sprintf("%d", merged.Counters["resilience.fallbacks"]),
			fmt.Sprintf("%d", merged.Counters["resilience.reject_only"]),
			fmt.Sprintf("%d", merged.Counters["resilience.budget_exhausted"]),
			fmt.Sprintf("%d", merged.Counters["faultinject.latency_spikes"]),
			fmt.Sprintf("%d", merged.Counters["faultinject.predictor_outages"]),
		)
	}
	res.Table = table
	return res, nil
}
