package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// Title identifies the experiment ("Fig 2b: ...").
	Title string
	// Header names the columns.
	Header []string
	// Rows hold formatted cells; each row matches Header's length.
	Rows [][]string
	// Notes are printed under the table (caveats, paper reference values).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(width) {
				pad = width[i] - len(c)
			}
			// Right-align numbers (all but the first column).
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", line(t.Header)); err != nil {
		return err
	}
	total := len(width) - 1
	for _, wd := range width {
		total += wd + 1
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "%s\n", line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV exports the table (header + rows; title and notes as comment
// records prefixed with '#') for external plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f1 formats a float with one decimal, f2 with two, f3 with three.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
