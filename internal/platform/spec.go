package platform

import (
	"fmt"
	"strings"
)

// Pool is one homogeneous group of resources: Count resources of one
// Kind. Pools generalise the historical New(cpus, gpus) shape — a
// platform is an ordered list of pools, and NewPools lays the resources
// out pool by pool with per-kind numbering (CPU1.., GPU1..).
type Pool struct {
	// Kind of every resource in the pool.
	Kind Kind
	// Count is the number of resources; must be non-negative.
	Count int
}

// NewPools builds a platform from resource pools. At least one resource
// is required overall; pools with Count 0 are permitted and contribute
// nothing. Resources are numbered per kind across pools, so
// NewPools({CPU,5}, {GPU,1}) is identical to New(5, 1).
func NewPools(pools ...Pool) (*Platform, error) {
	total := 0
	for _, pl := range pools {
		if pl.Count < 0 {
			return nil, fmt.Errorf("platform: pool of kind %s has negative count %d", pl.Kind, pl.Count)
		}
		if pl.Kind != CPU && pl.Kind != GPU {
			return nil, fmt.Errorf("platform: unknown resource kind %d", int(pl.Kind))
		}
		total += pl.Count
	}
	if total == 0 {
		return nil, fmt.Errorf("platform: need at least one resource")
	}
	p := &Platform{resources: make([]Resource, 0, total)}
	seq := map[Kind]int{}
	for _, pl := range pools {
		for i := 0; i < pl.Count; i++ {
			seq[pl.Kind]++
			p.resources = append(p.resources, Resource{
				ID:   len(p.resources),
				Name: fmt.Sprintf("%s%d", pl.Kind, seq[pl.Kind]),
				Kind: pl.Kind,
			})
		}
	}
	return p, nil
}

// kindForToken maps a spec token suffix to a resource kind.
func kindForToken(s byte) (Kind, bool) {
	switch s {
	case 'c', 'C':
		return CPU, true
	case 'g', 'G':
		return GPU, true
	}
	return 0, false
}

// Parse builds a platform from a compact spec string such as "64c8g":
// a sequence of <count><kind> tokens where the kind is c (preemptable,
// CPU-like) or g (non-preemptable, GPU-like). "5c1g" is the paper's
// evaluation platform. Errors name the offending token, so a mistyped
// flag value points at exactly the piece that is wrong.
func Parse(spec string) (*Platform, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, fmt.Errorf("platform: empty spec (want e.g. %q)", "5c1g")
	}
	var pools []Pool
	for i := 0; i < len(s); {
		start := i
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i == start || i == len(s) {
			return nil, fmt.Errorf("platform: spec %q: bad token %q (want <count>c or <count>g)", spec, s[start:])
		}
		kind, ok := kindForToken(s[i])
		if !ok {
			return nil, fmt.Errorf("platform: spec %q: bad token %q (want <count>c or <count>g)", spec, s[start:i+1])
		}
		count := 0
		for _, d := range s[start:i] {
			count = count*10 + int(d-'0')
			if count > 1<<20 {
				return nil, fmt.Errorf("platform: spec %q: token %q: count out of range", spec, s[start:i+1])
			}
		}
		pools = append(pools, Pool{Kind: kind, Count: count})
		i++
	}
	p, err := NewPools(pools...)
	if err != nil {
		return nil, fmt.Errorf("%w (spec %q)", err, spec)
	}
	return p, nil
}

// Spec renders the platform as a canonical Parse-able spec, e.g. "5c1g".
// A kind with zero resources is omitted.
func (p *Platform) Spec() string {
	var b strings.Builder
	if n := p.NumCPUs(); n > 0 {
		fmt.Fprintf(&b, "%dc", n)
	}
	if n := p.NumGPUs(); n > 0 {
		fmt.Fprintf(&b, "%dg", n)
	}
	return b.String()
}
