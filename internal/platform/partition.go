package platform

import "fmt"

// Shard is one partition of a larger platform: a self-contained
// sub-platform whose resources are renumbered from 0, plus the mapping
// back to the parent's resource ids. Each shard owns its resources
// exclusively — partitions never overlap — so per-shard schedulers can
// run concurrently without sharing EDF state.
type Shard struct {
	// Platform is the shard's own view: local ids 0..Len()-1.
	Platform *Platform
	// GlobalIDs maps a local resource id to the parent platform's id:
	// GlobalIDs[local] == global. Local layout is CPUs first, then GPUs,
	// each in ascending global-id order, mirroring New's convention.
	GlobalIDs []int
}

// Partition splits the platform into shards non-overlapping shards,
// dealing each kind's resources round-robin in id order: shard s
// receives the k-th resource of a kind iff k % shards == s. A balanced
// platform therefore shards into near-identical sub-platforms — e.g.
// "64c8g" into 8 shards of "8c1g" — while an uneven kind spreads as
// evenly as the deal allows. Every shard is guaranteed at least one
// resource; asking for more shards than resources is an error.
func (p *Platform) Partition(shards int) ([]Shard, error) {
	switch {
	case shards <= 0:
		return nil, fmt.Errorf("platform: need at least 1 shard, got %d", shards)
	case shards > p.Len():
		return nil, fmt.Errorf("platform: cannot cut %d resources into %d shards", p.Len(), shards)
	}
	ids := make([][]int, shards)
	for _, kind := range []Kind{CPU, GPU} {
		k := 0
		for _, r := range p.resources {
			if r.Kind != kind {
				continue
			}
			ids[k%shards] = append(ids[k%shards], r.ID)
			k++
		}
	}
	// Dealing CPUs before GPUs makes each shard's GlobalIDs list CPUs
	// first, so local id k has the same kind as GlobalIDs[k] in the
	// parent — the alignment the sub-platform constructor produces.
	out := make([]Shard, shards)
	for s := range out {
		if len(ids[s]) == 0 {
			// Reachable only when one kind dominates and the other is
			// absent from some shard while total >= shards; the CPU deal
			// fills shards 0..cpus-1 first, so a shard can be empty only
			// when shards > Len(), which is rejected above. Guard anyway.
			return nil, fmt.Errorf("platform: shard %d of %d would be empty", s, shards)
		}
		cpus, gpus := 0, 0
		for _, id := range ids[s] {
			if p.resources[id].Kind == CPU {
				cpus++
			} else {
				gpus++
			}
		}
		sub, err := NewPools(Pool{Kind: CPU, Count: cpus}, Pool{Kind: GPU, Count: gpus})
		if err != nil {
			return nil, fmt.Errorf("platform: shard %d: %w", s, err)
		}
		out[s] = Shard{Platform: sub, GlobalIDs: ids[s]}
	}
	return out, nil
}
