// Package platform models the heterogeneous hardware the resource manager
// schedules onto: a fixed set of computation resources, each either
// preemptable (CPU-like) or non-preemptable (GPU-like, accelerators that
// must run a kernel to completion).
package platform

import "fmt"

// Kind classifies a resource.
type Kind int

const (
	// CPU resources execute tasks preemptively: a running task can be
	// paused, migrated, and resumed.
	CPU Kind = iota
	// GPU resources are non-preemptable: once a task starts it must run to
	// completion on that resource and cannot be migrated away.
	GPU
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Resource is one computation resource r_i of the platform.
type Resource struct {
	// ID is the resource's index within its platform, 0-based.
	ID int
	// Name is a human-readable label such as "CPU1".
	Name string
	// Kind determines preemption semantics.
	Kind Kind
}

// Preemptable reports whether a task running on the resource may be
// preempted and later resumed (possibly elsewhere).
func (r Resource) Preemptable() bool { return r.Kind == CPU }

// Platform is an immutable set of resources. Construct with New or Default;
// the zero value is an empty platform.
type Platform struct {
	resources []Resource
}

// New builds a platform with the given number of CPU and GPU resources.
// CPUs come first (CPU1..CPUn), then GPUs (GPU1..GPUm).
func New(cpus, gpus int) *Platform {
	if cpus < 0 || gpus < 0 || cpus+gpus == 0 {
		panic("platform: need at least one resource")
	}
	p := &Platform{resources: make([]Resource, 0, cpus+gpus)}
	for i := 0; i < cpus; i++ {
		p.resources = append(p.resources, Resource{
			ID:   len(p.resources),
			Name: fmt.Sprintf("CPU%d", i+1),
			Kind: CPU,
		})
	}
	for i := 0; i < gpus; i++ {
		p.resources = append(p.resources, Resource{
			ID:   len(p.resources),
			Name: fmt.Sprintf("GPU%d", i+1),
			Kind: GPU,
		})
	}
	return p
}

// Default returns the platform used throughout the paper's evaluation:
// five CPUs and one GPU (Sec 5.1).
func Default() *Platform { return New(5, 1) }

// Motivational returns the platform of the paper's motivational example
// (Sec 3): two CPUs and one GPU.
func Motivational() *Platform { return New(2, 1) }

// Len returns the number of resources N.
func (p *Platform) Len() int { return len(p.resources) }

// Resource returns resource i. It panics if i is out of range.
func (p *Platform) Resource(i int) Resource { return p.resources[i] }

// Resources returns a copy of the resource list.
func (p *Platform) Resources() []Resource {
	out := make([]Resource, len(p.resources))
	copy(out, p.resources)
	return out
}

// NumCPUs returns the number of preemptable resources.
func (p *Platform) NumCPUs() int {
	n := 0
	for _, r := range p.resources {
		if r.Kind == CPU {
			n++
		}
	}
	return n
}

// NumGPUs returns the number of non-preemptable resources.
func (p *Platform) NumGPUs() int { return p.Len() - p.NumCPUs() }

// String summarises the platform, e.g. "platform(5 CPU + 1 GPU)".
func (p *Platform) String() string {
	return fmt.Sprintf("platform(%d CPU + %d GPU)", p.NumCPUs(), p.NumGPUs())
}
