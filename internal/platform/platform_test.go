package platform

import "testing"

func TestDefault(t *testing.T) {
	p := Default()
	if p.Len() != 6 {
		t.Fatalf("Default platform has %d resources, want 6", p.Len())
	}
	if p.NumCPUs() != 5 || p.NumGPUs() != 1 {
		t.Fatalf("Default platform %d CPUs %d GPUs, want 5 and 1", p.NumCPUs(), p.NumGPUs())
	}
}

func TestMotivational(t *testing.T) {
	p := Motivational()
	if p.NumCPUs() != 2 || p.NumGPUs() != 1 {
		t.Fatalf("Motivational platform %d CPUs %d GPUs, want 2 and 1", p.NumCPUs(), p.NumGPUs())
	}
}

func TestNewOrderingAndNames(t *testing.T) {
	p := New(2, 2)
	want := []struct {
		name string
		kind Kind
	}{
		{"CPU1", CPU}, {"CPU2", CPU}, {"GPU1", GPU}, {"GPU2", GPU},
	}
	for i, w := range want {
		r := p.Resource(i)
		if r.ID != i {
			t.Errorf("resource %d has ID %d", i, r.ID)
		}
		if r.Name != w.name || r.Kind != w.kind {
			t.Errorf("resource %d = %s/%v, want %s/%v", i, r.Name, r.Kind, w.name, w.kind)
		}
	}
}

func TestPreemptable(t *testing.T) {
	p := Default()
	for _, r := range p.Resources() {
		want := r.Kind == CPU
		if r.Preemptable() != want {
			t.Errorf("%s preemptable=%v, want %v", r.Name, r.Preemptable(), want)
		}
	}
}

func TestResourcesReturnsCopy(t *testing.T) {
	p := Default()
	rs := p.Resources()
	rs[0].Name = "mutated"
	if p.Resource(0).Name == "mutated" {
		t.Fatal("Resources leaked internal slice")
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty platform")
		}
	}()
	New(0, 0)
}

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind string = %q", Kind(9).String())
	}
}

func TestPlatformString(t *testing.T) {
	if got := Default().String(); got != "platform(5 CPU + 1 GPU)" {
		t.Fatalf("String() = %q", got)
	}
}
