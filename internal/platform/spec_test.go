package platform

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec       string
		cpus, gpus int
	}{
		{"5c1g", 5, 1},
		{"64c8g", 64, 8},
		{"2c", 2, 0},
		{"3g", 0, 3},
		{" 8C2G ", 8, 2},
		{"2c1g2c", 4, 1}, // repeated pools accumulate
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if p.NumCPUs() != c.cpus || p.NumGPUs() != c.gpus {
			t.Fatalf("Parse(%q) = %d CPU + %d GPU, want %d + %d",
				c.spec, p.NumCPUs(), p.NumGPUs(), c.cpus, c.gpus)
		}
	}
}

func TestParseSpecErrorsNameBadToken(t *testing.T) {
	cases := []struct {
		spec, token string
	}{
		{"64c8q", "8q"},
		{"c1g", "c1g"},
		{"5c1", "1"},
		{"5x", "5x"},
		{"", "empty spec"},
		{"0c0g", "at least one resource"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Fatalf("Parse(%q): expected error", c.spec)
		}
		if !strings.Contains(err.Error(), c.token) {
			t.Fatalf("Parse(%q) error %q does not name %q", c.spec, err, c.token)
		}
	}
}

func TestParseMatchesNew(t *testing.T) {
	p, err := Parse("5c1g")
	if err != nil {
		t.Fatal(err)
	}
	want := New(5, 1)
	if p.Len() != want.Len() {
		t.Fatalf("lengths differ: %d vs %d", p.Len(), want.Len())
	}
	for i := 0; i < p.Len(); i++ {
		if p.Resource(i) != want.Resource(i) {
			t.Fatalf("resource %d: %+v vs %+v", i, p.Resource(i), want.Resource(i))
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{"5c1g", "64c8g", "2c", "1g"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Spec(); got != spec {
			t.Fatalf("Parse(%q).Spec() = %q", spec, got)
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	p, err := Parse("64c8g")
	if err != nil {
		t.Fatal(err)
	}
	shards, err := p.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("got %d shards", len(shards))
	}
	seen := make([]bool, p.Len())
	for s, sh := range shards {
		if got := sh.Platform.Spec(); got != "8c1g" {
			t.Fatalf("shard %d is %q, want 8c1g", s, got)
		}
		if len(sh.GlobalIDs) != sh.Platform.Len() {
			t.Fatalf("shard %d: %d global ids for %d resources", s, len(sh.GlobalIDs), sh.Platform.Len())
		}
		for local, global := range sh.GlobalIDs {
			if seen[global] {
				t.Fatalf("resource %d assigned twice", global)
			}
			seen[global] = true
			if p.Resource(global).Kind != sh.Platform.Resource(local).Kind {
				t.Fatalf("shard %d local %d: kind mismatch with global %d", s, local, global)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("resource %d unassigned", id)
		}
	}
}

func TestPartitionUneven(t *testing.T) {
	p := New(5, 1)
	shards, err := p.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	// CPUs deal 3/2, the lone GPU lands on shard 0.
	if shards[0].Platform.Spec() != "3c1g" || shards[1].Platform.Spec() != "2c" {
		t.Fatalf("uneven deal: %q / %q", shards[0].Platform.Spec(), shards[1].Platform.Spec())
	}
}

func TestPartitionSingleShardIsIdentity(t *testing.T) {
	p := New(5, 1)
	shards, err := p.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0].Platform.Len() != p.Len() {
		t.Fatalf("bad identity partition: %+v", shards)
	}
	for local, global := range shards[0].GlobalIDs {
		if local != global {
			t.Fatalf("identity partition remaps %d -> %d", local, global)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	p := New(2, 1)
	if _, err := p.Partition(0); err == nil {
		t.Fatal("expected error for 0 shards")
	}
	if _, err := p.Partition(4); err == nil {
		t.Fatal("expected error for more shards than resources")
	}
}
