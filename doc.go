// Package predrm is a Go reproduction of "Runtime Resource Management with
// Workload Prediction" (Niknafs, Ukhov, Eles, Peng — DAC 2019): a
// prediction-aware runtime resource manager for heterogeneous embedded
// platforms that maps and schedules arriving firm real-time tasks so that
// deadlines are met with minimum energy.
//
// # What the library provides
//
//   - a heterogeneous platform model (preemptable CPUs, non-preemptable
//     GPU-like accelerators) and the paper's synthetic task/trace
//     generators (Sec 5.1);
//   - the paper's fast knapsack heuristic (Algorithm 1) and an exact
//     reference optimizer (the MILP's optimum via branch and bound), plus
//     the literal MILP formulation on a from-scratch simplex/B&B stack;
//   - workload predictors: an accuracy-dialed oracle matching the paper's
//     evaluation methodology, and online Markov/EWMA/two-phase predictors;
//   - a discrete-event simulator with energy, migration and deadline
//     auditing, and an experiment harness regenerating every table and
//     figure of the paper's evaluation.
//
// # Quick start
//
//	plat := predrm.DefaultPlatform()
//	set, _ := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 1)
//	tr, _ := predrm.GenerateTrace(set, predrm.DefaultTraceGenConfig(predrm.VeryTight), 2)
//	oracle, _ := predrm.NewOracle(tr, predrm.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len()})
//	res, _ := predrm.Simulate(predrm.SimConfig{
//		Platform:  plat,
//		TaskSet:   set,
//		Solver:    predrm.NewHeuristic(),
//		Predictor: oracle,
//	}, tr)
//	fmt.Printf("rejection: %.1f%%\n", res.RejectionPct())
//
// See the examples/ directory for runnable programs and cmd/experiments
// for the full evaluation.
package predrm
