GO ?= go

.PHONY: check build test vet race bench tracecheck

# check is the repo gate: vet, build everything, run the full test suite
# under the race detector (the telemetry layer is concurrency-safe by
# contract), and audit the golden trace with the replay checker.
check: vet build race tracecheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark and also writes a machine-readable summary
# (ns/op, B/op, allocs/op per benchmark) for regression tracking.
bench:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH.json

# tracecheck replays the golden event trace through the auditor: the
# recorded run must satisfy every resource-manager invariant.
tracecheck:
	$(GO) run ./cmd/tracetool check internal/sim/testdata/events.golden.jsonl
