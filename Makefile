GO ?= go

.PHONY: check build test vet race bench

# check is the repo gate: vet, build everything, and run the full test
# suite under the race detector (the telemetry layer is concurrency-safe
# by contract).
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
