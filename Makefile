GO ?= go

.PHONY: check build test vet race bench benchcheck tracecheck

# check is the repo gate: vet, build everything, run the full test suite
# under the race detector (the telemetry layer is concurrency-safe by
# contract), audit the golden trace with the replay checker, and gate the
# hot-path benchmarks against the committed baseline (skip: BENCHCHECK=0).
check: vet build race tracecheck benchcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark and also writes a machine-readable summary
# (ns/op, B/op, allocs/op per benchmark) for regression tracking.
bench:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH.json

# benchcheck reruns the hot-path benchmarks (solver entry points and
# per-activation feasibility probes) and gates them against the committed
# BENCH.json baseline: fail past +15% ns/op or any allocs/op increase.
# Set BENCHCHECK=0 to skip (e.g. on noisy shared machines).
BENCHCHECK ?= 1
benchcheck:
	@if [ "$(BENCHCHECK)" = "0" ]; then \
		echo "benchcheck: skipped (BENCHCHECK=0)"; \
	else \
		$(GO) test -run='^$$' -bench='HeuristicSolve|OptimalSolve|ResourceFeasible|SimulateEDF|FeasibleSorted' -benchmem \
			./internal/sched/ ./internal/exact/ | $(GO) run ./cmd/benchjson -out= -compare BENCH.json; \
	fi

# tracecheck replays the golden event trace through the auditor: the
# recorded run must satisfy every resource-manager invariant.
tracecheck:
	$(GO) run ./cmd/tracetool check internal/sim/testdata/events.golden.jsonl
