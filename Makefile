GO ?= go
GOFMT ?= gofmt

.PHONY: check build test vet fmtcheck race bench benchcheck tracecheck faultcheck obscheck explaincheck warmcheck servecheck shardcheck

# check is the repo gate: vet, formatting, build everything, run the full
# test suite under the race detector (the telemetry layer and the parallel
# exact solver are concurrency-safe by contract — internal/exact's
# differential and budget-exhaustion tests ride under race here), audit
# the golden trace with the replay checker, gate the hot-path benchmarks
# against the committed baseline (skip: BENCHCHECK=0), smoke the
# fault-injection resilience path (skip: FAULTCHECK=0), exercise the live
# introspection plane end to end (skip: OBSCHECK=0), exercise the
# decision-provenance plane (skip: EXPLAINCHECK=0), prove warm-start
# solving decision-neutral (skip: WARMCHECK=0), drive the wall-clock
# serving mode end to end (skip: SERVECHECK=0), and pin the scale-out
# layer's equivalences (skip: SHARDCHECK=0).
check: vet fmtcheck build race tracecheck benchcheck faultcheck obscheck explaincheck warmcheck servecheck shardcheck

# fmtcheck fails when any Go file is not gofmt-formatted (gofmt -l output
# is the offending file list).
fmtcheck:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "fmtcheck: gofmt needed on:"; \
		echo "$$unformatted"; \
		exit 1; \
	else \
		echo "fmtcheck: ok"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark and also writes a machine-readable summary
# (ns/op, B/op, allocs/op per benchmark) for regression tracking.
bench:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH.json

# benchcheck reruns the hot-path benchmarks (solver entry points and
# per-activation feasibility probes) and gates them against the committed
# BENCH.json baseline: fail past +15% ns/op or any allocs/op increase.
# Set BENCHCHECK=0 to skip (e.g. on noisy shared machines).
BENCHCHECK ?= 1
benchcheck:
	@if [ "$(BENCHCHECK)" = "0" ]; then \
		echo "benchcheck: skipped (BENCHCHECK=0)"; \
	else \
		$(GO) test -run='^$$' -bench='HeuristicSolve|HeuristicRepair|OptimalSolve|OptimalWarmStart|ResourceFeasible|SimulateEDF|FeasibleSorted' -benchmem \
			./internal/sched/ ./internal/exact/ ./internal/core/ | $(GO) run ./cmd/benchjson -out= -compare BENCH.json; \
	fi

# tracecheck replays the golden event trace through the auditor: the
# recorded run must satisfy every resource-manager invariant.
tracecheck:
	$(GO) run ./cmd/tracetool check internal/sim/testdata/events.golden.jsonl

# faultcheck smokes the resilience layer under the race detector: the
# fault-sweep ablation (graceful degradation, zero deadline misses), the
# deterministic fault plan, and the end-to-end trace audit of a faulted
# run. Set FAULTCHECK=0 to skip.
FAULTCHECK ?= 1
faultcheck:
	@if [ "$(FAULTCHECK)" = "0" ]; then \
		echo "faultcheck: skipped (FAULTCHECK=0)"; \
	else \
		$(GO) test -race -run 'FaultSweepSmoke|RunGridPromptErrorPropagation|SimDeterminism|EndToEndTraceAudits' \
			./internal/experiments/ ./internal/faultinject/; \
	fi

# obscheck exercises the live introspection plane under the race detector:
# subscriber fan-out (non-blocking, drop-counting), the Prometheus writer
# against the exposition validator and its golden file, the tail follower,
# and the end-to-end smoke test that serves a real simulation on a random
# port and scrapes every endpoint (including the /trace/tail byte-match
# against the JSONL sink). Set OBSCHECK=0 to skip.
OBSCHECK ?= 1
obscheck:
	@if [ "$(OBSCHECK)" = "0" ]; then \
		echo "obscheck: skipped (OBSCHECK=0)"; \
	else \
		$(GO) test -race -run 'Subscriber|Prometheus|ValidateExposition|SLO|Tailer|Decoder|OpsServer|Tail|Snapshotter|PlaneProbe|Explainz' \
			./internal/telemetry/ ./internal/obs/ ./internal/traceview/; \
	fi

# explaincheck exercises the decision-provenance plane: the recorder's
# arena and attempt-stamping semantics, the enumerated reason vocabulary,
# per-candidate feasibility verdicts and solver-chain hops from the
# heuristic/exact/chain solvers, decision events end to end through the
# simulator and the golden trace's reconstructed narratives, and the
# meta-test that keeps every -run gate in this Makefile selecting real
# tests. Set EXPLAINCHECK=0 to skip.
EXPLAINCHECK ?= 1
explaincheck:
	@if [ "$(EXPLAINCHECK)" = "0" ]; then \
		echo "explaincheck: skipped (EXPLAINCHECK=0)"; \
	else \
		$(GO) test -run 'Explain|Provenance|Reason|DecisionEvent|GateRegex|UnknownReason' \
			./internal/telemetry/ ./internal/core/ ./internal/sched/ ./internal/sim/ ./internal/traceview/ ./internal/meta/; \
	fi

# warmcheck proves warm-start solving is a speed knob, not a behaviour
# knob, under the race detector: the exact solver's warm-vs-cold
# differential (serial, parallel, and crossed modes), the repair engine's
# feasibility property, the fingerprint-churn property behind the
# cross-activation cache, and the end-to-end grid/trace identity checks.
# CI runs this leg under GOMAXPROCS={1,4}; it honours whatever the
# environment sets. Set WARMCHECK=0 to skip.
WARMCHECK ?= 1
warmcheck:
	@if [ "$(WARMCHECK)" = "0" ]; then \
		echo "warmcheck: skipped (WARMCHECK=0)"; \
	else \
		$(GO) test -race -run 'WarmStart|WarmState|Repair|FingerprintChurn|ParallelMatchesSerial' \
			./internal/sched/ ./internal/core/ ./internal/exact/ ./internal/experiments/; \
	fi

# shardcheck pins the scale-out admission layer under the race detector:
# the 1-shard sharded engine is byte-identical to the unsharded path,
# singleton batch epochs are byte-identical to one-by-one admission,
# sharded batched runs are deterministic despite concurrent per-shard
# solves, next-wake/late-advance behave across shard boundaries, the
# indexed candidate scan matches the plain heuristic bit-for-bit, and the
# platform spec/partition/projection plumbing underneath holds. Set
# SHARDCHECK=0 to skip.
SHARDCHECK ?= 1
shardcheck:
	@if [ "$(SHARDCHECK)" = "0" ]; then \
		echo "shardcheck: skipped (SHARDCHECK=0)"; \
	else \
		$(GO) test -race -run 'Sharded|BatchEpoch|IndexedHeuristic|LoadIndex|Partition|ParseSpec|Project' \
			./internal/sim/ ./internal/engine/ ./internal/core/ ./internal/platform/ ./internal/sched/ ./internal/task/; \
	fi

# servecheck drives the wall-clock serving mode end to end under the race
# detector: the sim/server differential (byte-identical results and
# telemetry for the same trace through both drivers of the shared
# engine), graceful-shutdown draining against a fast wall clock,
# concurrent HTTP intake under the serialized-activation contract, the
# obs plane mounted on the serving listener, and the API validation
# fences. Set SERVECHECK=0 to skip.
SERVECHECK ?= 1
servecheck:
	@if [ "$(SERVECHECK)" = "0" ]; then \
		echo "servecheck: skipped (SERVECHECK=0)"; \
	else \
		$(GO) test -race -run 'Serve' ./internal/serve/; \
	fi
