package predrm_test

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md
// per-experiment index). Each benchmark runs the corresponding experiment
// harness at a reduced but non-trivial scale and reports, besides ns/op,
// the headline metric of that experiment as custom benchmark units so a
// -bench run regenerates the paper's numbers in one pass:
//
//	go test -bench=. -benchmem
//
// Scale up via cmd/experiments for publication-quality statistics.

import (
	"testing"

	"predrm/internal/core"
	"predrm/internal/experiments"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// benchConfig is small enough for a -bench sweep on a laptop while still
// exercising every code path at realistic load.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Traces = 4
	cfg.TraceLen = 120
	return cfg
}

// BenchmarkMotivational regenerates Table 1 / Fig 1 (experiment T1).
func BenchmarkMotivational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Motivational()
		if err != nil {
			b.Fatal(err)
		}
		if !r.PredMapsCPU1 {
			b.Fatal("scenario (b) not reproduced")
		}
	}
}

// BenchmarkMILPvsHeuristic regenerates the Sec 5.2 comparison (E52).
func BenchmarkMILPvsHeuristic(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.MILPvsHeuristic(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RejExact.Mean, "milp-rej%")
		b.ReportMetric(r.RejHeuristic.Mean, "heur-rej%")
		b.ReportMetric(100*r.ExactWinRate, "milp-win%")
	}
}

func benchImpact(b *testing.B, tight trace.Tightness, energy bool) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.PredictionImpact(cfg, tight)
		if err != nil {
			b.Fatal(err)
		}
		if energy {
			b.ReportMetric(r.NormalizedEnergy[0], "milp-on")
			b.ReportMetric(r.NormalizedEnergy[1], "milp-off")
			b.ReportMetric(r.NormalizedEnergy[2], "heur-on")
			b.ReportMetric(r.NormalizedEnergy[3], "heur-off")
		} else {
			b.ReportMetric(r.Rejection[0].Mean, "milp-on-rej%")
			b.ReportMetric(r.Rejection[1].Mean, "milp-off-rej%")
			b.ReportMetric(r.Rejection[2].Mean, "heur-on-rej%")
			b.ReportMetric(r.Rejection[3].Mean, "heur-off-rej%")
		}
	}
}

// BenchmarkFig2a regenerates Fig 2a: rejection %, LT group.
func BenchmarkFig2a(b *testing.B) { benchImpact(b, trace.LessTight, false) }

// BenchmarkFig2b regenerates Fig 2b: rejection %, VT group.
func BenchmarkFig2b(b *testing.B) { benchImpact(b, trace.VeryTight, false) }

// BenchmarkFig3a regenerates Fig 3a: normalized energy, VT group.
func BenchmarkFig3a(b *testing.B) { benchImpact(b, trace.VeryTight, true) }

// BenchmarkFig3b regenerates Fig 3b: normalized energy, LT group.
func BenchmarkFig3b(b *testing.B) { benchImpact(b, trace.LessTight, true) }

// BenchmarkFig4a regenerates Fig 4a: rejection vs task-type accuracy (VT).
func BenchmarkFig4a(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4a(cfg, []float64{0.25, 0.5, 0.75, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RejHeuristic[0].Mean, "heur-rej%@0.25")
		b.ReportMetric(r.RejHeuristic[3].Mean, "heur-rej%@1.00")
		b.ReportMetric(r.OffHeuristic.Mean, "heur-rej%@off")
	}
}

// BenchmarkFig4b regenerates Fig 4b: rejection vs arrival-time accuracy (VT).
func BenchmarkFig4b(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4b(cfg, []float64{0.25, 0.5, 0.75, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RejHeuristic[0].Mean, "heur-rej%@0.25")
		b.ReportMetric(r.RejHeuristic[3].Mean, "heur-rej%@1.00")
		b.ReportMetric(r.OffHeuristic.Mean, "heur-rej%@off")
	}
}

// BenchmarkFig5 regenerates Fig 5: rejection vs prediction overhead (VT).
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cfg, []float64{0, 0.08, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RejHeuristic[0].Mean, "heur-rej%@0")
		b.ReportMetric(r.RejHeuristic[2].Mean, "heur-rej%@50")
		b.ReportMetric(r.OffHeuristic.Mean, "heur-rej%@off")
	}
}

// BenchmarkAblationRegret regenerates ablation A1 (max-regret vs greedy).
func BenchmarkAblationRegret(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRegret(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rej[0].Mean, "regret-rej%")
		b.ReportMetric(r.Rej[1].Mean, "greedy-rej%")
	}
}

// BenchmarkAblationMigration regenerates ablation A2 (migration charging).
func BenchmarkAblationMigration(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMigration(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rej[0].Mean, "started-only-rej%")
		b.ReportMetric(r.Rej[1].Mean, "always-rej%")
	}
}

// BenchmarkLookahead regenerates extension X1 (forecast-horizon sweep).
func BenchmarkLookahead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.LookaheadSweep(cfg, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rej[0].Mean, "off-rej%")
		b.ReportMetric(r.Rej[1].Mean, "k1-rej%")
		b.ReportMetric(r.Rej[2].Mean, "k3-rej%")
	}
}

// benchSim runs one seeded simulation per iteration: 300 VT requests with
// perfect prediction under the heuristic engine. With instrument=false the
// telemetry hooks take their no-op path (nil tracer and registry); with
// instrument=true every event is ring-buffered and every metric recorded.
// Comparing BenchmarkRun against BenchmarkRunWithTelemetry bounds the cost
// of full instrumentation; BenchmarkRun itself exercises the disabled path,
// whose only cost over uninstrumented code is nil checks (<5% of sim.Run).
func benchSim(b *testing.B, instrument bool) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(21))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(set, trace.GenConfig{
		Length:           300,
		InterarrivalMean: 2.2,
		InterarrivalStd:  0.7,
		Tightness:        trace.VeryTight,
	}, rng.New(22))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle, err := predict.NewOracle(tr, predict.OracleConfig{
			TypeAccuracy: 1,
			NumTypes:     set.Len(),
			Seed:         23,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.Config{
			Platform:  plat,
			TaskSet:   set,
			Solver:    &core.Heuristic{},
			Predictor: oracle,
		}
		if instrument {
			cfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{})
			cfg.Metrics = telemetry.NewRegistry()
		}
		res, err := sim.Run(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != tr.Len() {
			b.Fatalf("requests: got %d, want %d", res.Requests, tr.Len())
		}
	}
}

// BenchmarkRun measures sim.Run with telemetry disabled (the no-op path).
func BenchmarkRun(b *testing.B) { benchSim(b, false) }

// BenchmarkRunWithTelemetry measures sim.Run with a ring tracer and a
// metrics registry attached — the full instrumentation cost.
func BenchmarkRunWithTelemetry(b *testing.B) { benchSim(b, true) }

// BenchmarkOnlinePredictors regenerates ablation A3.
func BenchmarkOnlinePredictors(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.OnlinePredictors(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rej[0].Mean, "off-rej%")
		b.ReportMetric(r.Rej[1].Mean, "oracle-rej%")
		b.ReportMetric(r.Rej[2].Mean, "markov-rej%")
	}
}
